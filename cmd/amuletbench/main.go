// Command amuletbench runs the repository's core performance benchmarks
// outside `go test` and emits a dated JSON snapshot, so the simulator's
// throughput trajectory accumulates as comparable BENCH_<date>.json files:
//
//	amuletbench                      # run all benches, write BENCH_<date>.json
//	amuletbench -label baseline      # write BENCH_<date>-baseline.json
//	amuletbench -nodecodecache       # measure the live-decode engine instead
//	amuletbench -stdout              # print the JSON instead of writing a file
//	amuletbench -benchtime 3s        # run each benchmark for at least 3s
//
// Each entry reports host ns/op and simulated instructions retired per host
// second — the "how fast is the simulator itself" metric the ROADMAP's
// performance arc tracks (the sim-* paper metrics stay in `go test -bench`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/fleet"
	"amuletiso/internal/isa"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`                   // operations timed
	NsPerOp     float64 `json:"ns/op"`                 // host nanoseconds per operation
	InstrPerSec float64 `json:"instr/s"`               // simulated instructions per host second
	SimInstr    uint64  `json:"simInstr"`              // total simulated instructions retired
	AllocsPerOp float64 `json:"allocs/op"`             // heap allocations per operation
	BytesPerOp  float64 `json:"bytes/op"`              // heap bytes allocated per operation
	WallSeconds float64 `json:"wall_seconds"`          // total measured wall time
	OverheadPct float64 `json:"overheadPct,omitempty"` // paired benches: percent over the reference op

	// DirtyPagesPerDev is the mean number of 256-byte COW pages a device
	// dirtied (boot benches only): the per-device memory footprint the COW
	// work tracks. 256 (the whole address space) under -nocow.
	DirtyPagesPerDev float64 `json:"dirtyPages/dev,omitempty"`
}

// Snapshot is the file-level schema of BENCH_<date>.json.
type Snapshot struct {
	Date        string   `json:"date"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	DecodeCache bool     `json:"decodeCache"`
	Fusion      bool     `json:"fusion"`
	ExecCerts   bool     `json:"execCerts"`
	Threading   bool     `json:"threading"`
	JIT         bool     `json:"jit"`
	Batching    bool     `json:"batching"`
	Metrics     bool     `json:"metrics"`
	Tracing     bool     `json:"tracing"`
	COW         bool     `json:"cow"`
	Power       bool     `json:"power"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	benchtime := flag.Duration("benchtime", time.Second, "minimum measuring time per benchmark")
	label := flag.String("label", "", "suffix for the output file name (BENCH_<date>-<label>.json)")
	outDir := flag.String("out", ".", "directory for the snapshot file")
	toStdout := flag.Bool("stdout", false, "print JSON to stdout instead of writing a file")
	noCache := flag.Bool("nodecodecache", false, "disable the predecoded instruction cache")
	noFuse := flag.Bool("nofuse", false, "disable superinstruction fusion")
	noCert := flag.Bool("nocert", false, "disable execute certificates (per-word fetch checks)")
	noThread := flag.Bool("nothread", false, "disable threaded dispatch (switch-executor engine)")
	noJIT := flag.Bool("nojit", false, "disable the superblock JIT (interpreter-only engine)")
	noBatch := flag.Bool("nobatch", false, "disable fleet wear-window batching")
	noObs := flag.Bool("noobs", false, "disable observability (metrics; tracing stays per-benchmark)")
	noCOW := flag.Bool("nocow", false, "disable copy-on-write device memory (flat 64KiB clones, the memory oracle)")
	noPower := flag.Bool("nopower", false, "disable the fleet intermittent-power model")
	force := flag.Bool("force", false, "overwrite an existing snapshot file")
	baseline := flag.String("baseline", "", "compare instr/s against this committed snapshot and fail on drift")
	tolerance := flag.Float64("tolerance", 50,
		"with -baseline: max tolerated instr/s drop, percent (hardware varies, so keep it wide)")
	overheadMax := flag.Float64("overhead-max", 0,
		"fail when a paired benchmark (TraceOverhead) measures more than this percent overhead (0 = report only)")
	flag.Parse()

	cpu.SetDecodeCache(!*noCache)
	isa.SetFusion(!*noFuse)
	mem.SetExecCerts(!*noCert)
	isa.SetThreading(!*noThread)
	isa.SetJIT(!*noJIT)
	fleet.SetBatching(!*noBatch)
	mem.SetCOW(!*noCOW)
	fleet.SetPower(!*noPower)
	if *noObs {
		obs.SetMetrics(false)
	}
	if *benchtime <= 0 {
		fail(fmt.Errorf("-benchtime must be positive, got %v", *benchtime))
	}
	if *label == "" {
		// Keep ablation runs from clobbering the same-day baseline snapshot;
		// the auto-label names every active ablation so combined runs cannot
		// masquerade as single-flag baselines.
		var parts []string
		if *noCache {
			parts = append(parts, "nodecodecache")
		}
		if *noFuse {
			parts = append(parts, "nofuse")
		}
		if *noCert {
			parts = append(parts, "nocert")
		}
		if *noThread {
			parts = append(parts, "nothread")
		}
		if *noJIT {
			parts = append(parts, "nojit")
		}
		if *noBatch {
			parts = append(parts, "nobatch")
		}
		if *noObs {
			parts = append(parts, "noobs")
		}
		if *noCOW {
			parts = append(parts, "nocow")
		}
		if *noPower {
			parts = append(parts, "nopower")
		}
		*label = strings.Join(parts, "-")
	}

	snap := Snapshot{
		Date:        time.Now().Format("2006-01-02"),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		DecodeCache: cpu.DecodeCacheEnabled(),
		Fusion:      isa.FusionEnabled(),
		ExecCerts:   mem.ExecCertsEnabled(),
		Threading:   isa.ThreadingEnabled(),
		JIT:         isa.JITEnabled(),
		Batching:    fleet.BatchingEnabled(),
		Metrics:     obs.MetricsEnabled(),
		Tracing:     obs.TracingEnabled(),
		COW:         mem.COWEnabled(),
		Power:       fleet.PowerEnabled(),
	}
	for _, b := range benches {
		var res Result
		var err error
		if b.refSetup != nil {
			res, err = measurePaired(b, *benchtime)
		} else {
			res, err = measure(b, *benchtime)
		}
		if err != nil {
			fail(fmt.Errorf("%s: %w", b.name, err))
		}
		if b.finish != nil {
			b.finish(&res)
		}
		snap.Benchmarks = append(snap.Benchmarks, res)
		extra := ""
		if b.refSetup != nil {
			extra = fmt.Sprintf("  overhead %+.2f%%", res.OverheadPct)
			if *overheadMax > 0 && res.OverheadPct > *overheadMax {
				fail(fmt.Errorf("%s: %.2f%% overhead exceeds the %.0f%% cap",
					b.name, res.OverheadPct, *overheadMax))
			}
		}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %14.0f instr/s (%d ops)%s\n",
			res.Name, res.NsPerOp, res.InstrPerSec, res.Ops, extra)
	}

	enc := json.NewEncoder(os.Stdout)
	if !*toStdout {
		name := "BENCH_" + snap.Date
		if *label != "" {
			name += "-" + *label
		}
		path := filepath.Join(*outDir, name+".json")
		if !*force {
			// A same-day re-run would silently replace the numbers the last
			// commit recorded — the bench-drift failure mode. Demand intent.
			if _, err := os.Stat(path); err == nil {
				fail(fmt.Errorf("%s already exists; pass -force to overwrite or -label to write a new file", path))
			}
		}
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fail(err)
	}
	if *baseline != "" {
		if err := checkDrift(*baseline, snap, *tolerance); err != nil {
			fail(err)
		}
	}
}

// checkDrift compares each measured benchmark against the committed baseline
// snapshot, failing when any regresses more than tol percent. Throughput
// benchmarks compare instr/s; instruction-free benchmarks (DeviceBoot)
// compare ns/op instead, so the boot-template win stays gated too. Absolute
// numbers vary with host hardware, so the band is wide: the gate exists to
// catch engine-sized regressions (a disabled cache, an accidental O(n)
// fetch path, a template that stopped attaching), not single-digit noise.
func checkDrift(path string, snap Snapshot, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	var drifted []string
	for _, r := range snap.Benchmarks {
		b, ok := baseBy[r.Name]
		switch {
		case !ok:
		case b.InstrPerSec > 0:
			deltaPct := 100 * (r.InstrPerSec - b.InstrPerSec) / b.InstrPerSec
			fmt.Fprintf(os.Stderr, "drift %-28s %+7.1f%% instr/s vs %s\n", r.Name, deltaPct, path)
			if deltaPct < -tol {
				drifted = append(drifted,
					fmt.Sprintf("%s: %.0f instr/s is %.1f%% below baseline %.0f (tolerance %.0f%%)",
						r.Name, r.InstrPerSec, -deltaPct, b.InstrPerSec, tol))
			}
		case b.NsPerOp > 0:
			deltaPct := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			fmt.Fprintf(os.Stderr, "drift %-28s %+7.1f%% ns/op vs %s\n", r.Name, deltaPct, path)
			if deltaPct > tol {
				drifted = append(drifted,
					fmt.Sprintf("%s: %.0f ns/op is %.1f%% above baseline %.0f (tolerance %.0f%%)",
						r.Name, r.NsPerOp, deltaPct, b.NsPerOp, tol))
			}
		}
		// Allocation growth is gated on every benchmark that has a
		// baseline: allocs/op is nearly host-independent, so the same band
		// catches structural regressions (a boot path re-growing per-device
		// loads) that timing noise could hide.
		if ok && b.AllocsPerOp > 0 {
			deltaPct := 100 * (r.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
			if deltaPct > tol {
				drifted = append(drifted,
					fmt.Sprintf("%s: %.1f allocs/op is %.1f%% above baseline %.1f (tolerance %.0f%%)",
						r.Name, r.AllocsPerOp, deltaPct, b.AllocsPerOp, tol))
			}
		}
	}
	if len(drifted) > 0 {
		return fmt.Errorf("performance drifted outside the tolerance band:\n  %s", strings.Join(drifted, "\n  "))
	}
	return nil
}

// bench is one named workload: setup returns an op closure that performs one
// operation and reports the simulated instructions it retired. A bench with a
// refSetup is measured paired: op and ref alternate in interleaved time
// slices, and OverheadPct compares the best slice of each side — the only way
// a percent-level delta survives host noise that dwarfs it.
type bench struct {
	name     string
	setup    func() (op func() (uint64, error), err error)
	refSetup func() (op func() (uint64, error), err error)
	// finish, when set, runs after measurement to attach workload-specific
	// numbers the op closure accumulated (e.g. dirty pages per device).
	finish func(r *Result)
}

// measurePaired measures b's op and ref interleaved: eight alternating time
// slices each, comparing the best slice of each side. Sequential A-then-B
// measurement cannot resolve a percent-level overhead on a host whose
// throughput wanders by ±20% over seconds; interleaving subjects both sides
// to the same drift and min-of-slices discards the transient spikes. The
// Result's throughput numbers come from the op side only.
func measurePaired(b bench, benchtime time.Duration) (Result, error) {
	op, err := b.setup()
	if err != nil {
		return Result{}, err
	}
	ref, err := b.refSetup()
	if err != nil {
		return Result{}, err
	}
	if _, err := op(); err != nil {
		return Result{}, err
	}
	if _, err := ref(); err != nil {
		return Result{}, err
	}
	const slices = 8
	slice := benchtime / slices
	runSlice := func(f func() (uint64, error)) (ops int, instr uint64, wall time.Duration, err error) {
		start := time.Now()
		for ops == 0 || time.Since(start) < slice {
			n, err := f()
			if err != nil {
				return 0, 0, 0, err
			}
			instr += n
			ops++
		}
		return ops, instr, time.Since(start), nil
	}
	var (
		bestOp, bestRef = math.Inf(1), math.Inf(1)
		ops             int
		instr, mallocs  uint64
		alloc           uint64
		wall            time.Duration
		m0, m1          runtime.MemStats
	)
	for i := 0; i < slices; i++ {
		rOps, _, rWall, err := runSlice(ref)
		if err != nil {
			return Result{}, err
		}
		if ns := float64(rWall.Nanoseconds()) / float64(rOps); ns < bestRef {
			bestRef = ns
		}
		runtime.ReadMemStats(&m0)
		oOps, oInstr, oWall, err := runSlice(op)
		if err != nil {
			return Result{}, err
		}
		runtime.ReadMemStats(&m1)
		mallocs += m1.Mallocs - m0.Mallocs
		alloc += m1.TotalAlloc - m0.TotalAlloc
		ops += oOps
		instr += oInstr
		wall += oWall
		if ns := float64(oWall.Nanoseconds()) / float64(oOps); ns < bestOp {
			bestOp = ns
		}
	}
	return Result{
		Name:        b.name,
		Ops:         ops,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		InstrPerSec: float64(instr) / wall.Seconds(),
		SimInstr:    instr,
		AllocsPerOp: float64(mallocs) / float64(ops),
		BytesPerOp:  float64(alloc) / float64(ops),
		WallSeconds: wall.Seconds(),
		OverheadPct: 100 * (bestOp - bestRef) / bestRef,
	}, nil
}

// measure runs b's op until benchtime elapses (with a warm-up op first),
// recording host time and heap allocation per op (allocs/op regressions on
// the boot and dispatch paths are exactly the kind of engine-sized change
// the drift gate exists to catch).
func measure(b bench, benchtime time.Duration) (Result, error) {
	op, err := b.setup()
	if err != nil {
		return Result{}, err
	}
	if _, err := op(); err != nil { // warm-up: build caches, page in firmware
		return Result{}, err
	}
	var (
		ops    int
		instr  uint64
		m0, m1 runtime.MemStats
	)
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for ops == 0 || time.Since(start) < benchtime {
		n, err := op()
		if err != nil {
			return Result{}, err
		}
		instr += n
		ops++
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return Result{
		Name:        b.name,
		Ops:         ops,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		InstrPerSec: float64(instr) / wall.Seconds(),
		SimInstr:    instr,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		WallSeconds: wall.Seconds(),
	}, nil
}

// benches mirrors the tracked `go test -bench` families: raw simulator speed
// (BenchmarkSimulator), a Figure 3 style compute-heavy standalone program,
// fleet throughput (BenchmarkFleetThroughput), and boot-only device cost
// (the template-clone path the zero-cost-boot work optimizes).
var benches = []bench{
	{name: "Simulator/MPU", setup: setupSimulator},
	{name: "TraceOverhead/MPU", setup: setupTraceOverhead, refSetup: setupSimulator},
	{name: "Standalone/Quicksort/MPU", setup: setupQuicksort},
	{name: "FleetThroughput/32dev", setup: setupFleet},
	{name: "FleetThroughput/100kdev", setup: setupFleet100k},
	{name: "DeviceBoot/32dev", setup: setupDeviceBoot, finish: finishDeviceBoot},
}

// setupSimulator measures one kernel event dispatch (the BenchmarkSimulator
// workload): a synthetic app's memory-ops handler under the MPU hybrid.
func setupSimulator() (func() (uint64, error), error) {
	app := apps.Synthetic()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		return nil, err
	}
	k := kernel.New(fw)
	k.RunUntil(1) // consume EvInit
	return func() (uint64, error) {
		before := k.CPU.Insns
		k.Post(0, apps.EvMemOps, 100, 0)
		if !k.Step() {
			return 0, fmt.Errorf("event not delivered")
		}
		if len(k.Faults) > 0 {
			return 0, fmt.Errorf("fault: %v", k.Faults[len(k.Faults)-1])
		}
		return k.CPU.Insns - before, nil
	}, nil
}

// setupTraceOverhead is the Simulator/MPU workload with a flight recorder
// attached: the instr/s gap between the two is the tracing tax the ISSUE caps
// at 2%. The recorder is attached directly (not via the global tracing
// switch), so the rest of the suite measures the untraced engine.
func setupTraceOverhead() (func() (uint64, error), error) {
	app := apps.Synthetic()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, cc.ModeMPU)
	if err != nil {
		return nil, err
	}
	k := kernel.New(fw)
	k.AttachRecorder(obs.NewRecorder(obs.DefaultRing))
	k.RunUntil(1) // consume EvInit
	return func() (uint64, error) {
		before := k.CPU.Insns
		k.Post(0, apps.EvMemOps, 100, 0)
		if !k.Step() {
			return 0, fmt.Errorf("event not delivered")
		}
		if len(k.Faults) > 0 {
			return 0, fmt.Errorf("fault: %v", k.Faults[len(k.Faults)-1])
		}
		return k.CPU.Insns - before, nil
	}, nil
}

// setupQuicksort measures a full standalone program run (compile once, run
// per op), the shape of the paper's Figure 3 benchmarks.
func setupQuicksort() (func() (uint64, error), error) {
	const src = `
int a[64];
int seed;
int rnd() { seed = seed * 1103 + 12345; return seed % 1000; }
void sort(int lo, int hi) {
    int i; int j; int p; int t;
    if (lo >= hi) { return; }
    p = a[(lo + hi) / 2]; i = lo; j = hi;
    while (i <= j) {
        while (a[i] < p) { i = i + 1; }
        while (a[j] > p) { j = j - 1; }
        if (i <= j) { t = a[i]; a[i] = a[j]; a[j] = t; i = i + 1; j = j - 1; }
    }
    sort(lo, j);
    sort(i, hi);
}
int main() {
    int i;
    seed = 7;
    for (i = 0; i < 64; i++) { a[i] = rnd(); }
    sort(0, 63);
    return a[0] + a[63];
}
`
	p, err := cc.CompileProgram("qs", src, cc.ProgramOptions{
		Mode: cc.ModeMPU, EnableMPU: true, StackBytes: 1024,
	})
	if err != nil {
		return nil, err
	}
	return func() (uint64, error) {
		m := p.Load()
		reason, fault := m.Run(50_000_000)
		if fault != nil || reason != cpu.StopHalt {
			return 0, fmt.Errorf("stop=%v fault=%v", reason, fault)
		}
		return m.CPU.Insns, nil
	}, nil
}

// setupFleet measures a 32-device fleet run per op, matching the
// BenchmarkFleetThroughput scenario.
func setupFleet() (func() (uint64, error), error) {
	pedometer, ok := apps.ByName("pedometer")
	if !ok {
		return nil, fmt.Errorf("no pedometer app")
	}
	hr, ok := apps.ByName("hr")
	if !ok {
		return nil, fmt.Errorf("no hr app")
	}
	sc := fleet.Scenario{
		Name:       "bench",
		Apps:       []apps.App{pedometer, hr},
		Mode:       cc.ModeMPU,
		DurationMS: 2_000,
		Devices:    32,
		Seed:       1,
	}
	runner := &fleet.Runner{Cache: fleet.NewBuildCache()}
	return func() (uint64, error) {
		rep, err := runner.Run(context.Background(), sc)
		if err != nil {
			return 0, err
		}
		return rep.TotalInsns, nil
	}, nil
}

// setupFleet100k is the million-device scale probe: 100k devices over a short
// wear window per op. Boot cost dominates event delivery here, so this is the
// benchmark the COW work moves — under -nocow every device pays a 64 KiB
// clone, under COW a handful of page faults.
func setupFleet100k() (func() (uint64, error), error) {
	pedometer, ok := apps.ByName("pedometer")
	if !ok {
		return nil, fmt.Errorf("no pedometer app")
	}
	hr, ok := apps.ByName("hr")
	if !ok {
		return nil, fmt.Errorf("no hr app")
	}
	sc := fleet.Scenario{
		Name:       "bench-100k",
		Apps:       []apps.App{pedometer, hr},
		Mode:       cc.ModeMPU,
		DurationMS: 100,
		Devices:    100_000,
		Seed:       1,
	}
	runner := &fleet.Runner{Cache: fleet.NewBuildCache()}
	return func() (uint64, error) {
		rep, err := runner.Run(context.Background(), sc)
		if err != nil {
			return 0, err
		}
		return rep.TotalInsns, nil
	}, nil
}

// bootDirtyPages/bootDevices accumulate the DeviceBoot workload's per-device
// dirty-page counts across ops; finishDeviceBoot folds them into the Result.
var bootDirtyPages, bootDevices uint64

// setupDeviceBoot measures pure boot cost: 32 kernels cloned from the shared
// boot template per op, no events delivered. It retires no simulated
// instructions (instr/s stays 0), so the drift gate tracks it by ns/op and
// allocs/op — the metrics the template-clone optimization moves.
func setupDeviceBoot() (func() (uint64, error), error) {
	pedometer, ok := apps.ByName("pedometer")
	if !ok {
		return nil, fmt.Errorf("no pedometer app")
	}
	hr, ok := apps.ByName("hr")
	if !ok {
		return nil, fmt.Errorf("no hr app")
	}
	list := []apps.App{pedometer, hr}
	cache := fleet.NewBuildCache()
	tmpl, err := cache.Template(list, cc.ModeMPU)
	if err != nil {
		return nil, err
	}
	sink := 0
	bootDirtyPages, bootDevices = 0, 0
	return func() (uint64, error) {
		for d := 0; d < 32; d++ {
			k := tmpl.NewKernel(fleet.DeviceSeed(1, d))
			sink += len(k.Apps)
			bootDirtyPages += uint64(k.Bus.DirtyPages())
			bootDevices++
		}
		if sink == 0 {
			return 0, fmt.Errorf("boot produced no apps")
		}
		return 0, nil
	}, nil
}

// finishDeviceBoot attaches the measured per-device dirty-page footprint.
func finishDeviceBoot(r *Result) {
	if bootDevices > 0 {
		r.DirtyPagesPerDev = float64(bootDirtyPages) / float64(bootDevices)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amuletbench:", err)
	os.Exit(1)
}
