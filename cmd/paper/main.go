// Command paper regenerates every table and figure of the paper's
// evaluation section and prints them side by side with the published
// values.
//
// Usage:
//
//	paper [-table1] [-figure2] [-figure3] [-sample minutes] [-iters n]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"amuletiso"
)

func main() {
	t1 := flag.Bool("table1", false, "run Table 1 (primitive operation costs)")
	f2 := flag.Bool("figure2", false, "run Figure 2 (weekly overhead and battery impact)")
	f3 := flag.Bool("figure3", false, "run Figure 3 (benchmark slowdowns)")
	sample := flag.Int("sample", 20, "Figure 2 profiling window in minutes of virtual wear")
	iters := flag.Int("iters", 200, "Figure 3 iterations per benchmark (paper: 200)")
	flag.Parse()

	all := !*t1 && !*f2 && !*f3

	if *t1 || all {
		r, err := amuletiso.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if *f3 || all {
		r, err := amuletiso.Figure3(*iters)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if *f2 || all {
		fmt.Printf("profiling the nine-app suite (%d min window x 9 apps x 4 modes)...\n", *sample)
		r, err := amuletiso.Figure2(uint64(*sample) * 60 * 1000)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
