// Command amuletfleetd serves fleet simulation as a long-running daemon:
// campaigns are submitted as JSON jobs over HTTP, scheduled across a shared
// worker pool with a persistent build cache, streamed as NDJSON progress,
// and checkpointed to a state directory so a killed daemon picks up where it
// left off — with final reports byte-identical to one-shot amuletfleet runs.
//
//	amuletfleetd -addr 127.0.0.1:8470 -state /var/lib/amuletfleetd
//	curl -X POST -d '{"devices":200,"mode":"mpu"}' http://127.0.0.1:8470/jobs
//	curl http://127.0.0.1:8470/jobs/job-1/stream        # NDJSON progress
//	curl http://127.0.0.1:8470/jobs/job-1/report        # == amuletfleet -json
//
// After a crash or SIGKILL, restart with -resume to reload persisted jobs
// and continue interrupted campaigns from their last checkpoint.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"amuletiso/internal/fleet"
	"amuletiso/internal/fleetd"
	"amuletiso/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8470", "listen address (host:port, :0 picks a free port)")
	state := flag.String("state", "", "state directory for job persistence and crash recovery (empty = in-memory only)")
	resume := flag.Bool("resume", false, "reload persisted jobs from -state and continue interrupted campaigns")
	parallel := flag.Int("parallel", 0, "simulation worker goroutines (0 = all cores)")
	shard := flag.Int("shard-devices", 25, "devices per sequentially scheduled, checkpointable shard (0 = whole fleet at once)")
	shardProgs := flag.Int("shard-programs", 250, "torture programs per sequentially scheduled, mergeable shard (0 = whole campaign at once)")
	segment := flag.Uint64("segment-ms", 5000, "virtual milliseconds between in-flight device snapshot refreshes")
	flush := flag.Duration("flush", 2*time.Second, "real-time interval between checkpoint writes while a job runs")
	flag.Parse()

	if *state != "" {
		if err := os.MkdirAll(*state, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "amuletfleetd: %v\n", err)
			os.Exit(1)
		}
	}

	s := fleetd.NewServer(*state)
	s.Runner = &fleet.Runner{Workers: *parallel, Cache: fleet.NewBuildCache()}
	s.ShardDevices = *shard
	s.ShardPrograms = *shardProgs
	s.SegmentMS = *segment
	s.FlushEvery = *flush
	if *resume {
		if err := s.LoadState(); err != nil {
			fmt.Fprintf(os.Stderr, "amuletfleetd: resume: %v\n", err)
			os.Exit(1)
		}
	}
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amuletfleetd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("amuletfleetd listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("amuletfleetd: shutting down")
	// Stop the scheduler first so the running job parks a consistent cut and
	// re-queues on disk; then drain HTTP so in-flight scrapes and report
	// fetches complete.
	s.Stop()
	obs.StopServer(srv)
}
