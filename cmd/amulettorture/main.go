// Command amulettorture runs whole-program fuzzing campaigns against the
// isolation pipeline: generated AmuletC programs compiled through the real
// cc → asm → image toolchain and executed on the simulated CPU.
//
//	amulettorture -n 1000 -seed 1                      # differential campaign
//	amulettorture -kind adversarial -n 1000 -json      # out-of-region attack campaign
//	amulettorture -kind hosted -n 200                  # gate/watchdog attacks under the kernel
//	amulettorture -kind all -n 300                     # everything
//	amulettorture -emit 42                             # print one generated program
//	amulettorture -write-corpus internal/torture/testdata
//
// A differential campaign asserts every generated program behaves
// identically under the unprotected baseline and each isolated model; an
// adversarial campaign injects out-of-region loads, stores and jumps and
// asserts each is trapped by the predicted layer (compiler check, MPU
// segment, kernel gate or watchdog). Reports are byte-identical for a given
// seed regardless of -parallel, and campaigns shard across machines with
// -first exactly like amuletfleet devices. Failing cases are shrunk to
// minimal reproducers; -out saves them as replayable corpus files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"amuletiso/internal/cpu"
	"amuletiso/internal/fleet"
	"amuletiso/internal/isa"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
	"amuletiso/internal/torture"
)

func main() {
	n := flag.Int("n", 1000, "number of generated programs per campaign")
	first := flag.Int("first", 0, "first case index (for sharding a campaign across machines)")
	seed := flag.Uint64("seed", 1, "campaign seed (per-case seeds derive from it)")
	kind := flag.String("kind", "differential", "campaign kind: differential, adversarial, hosted, brownout or all")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	restrictedEvery := flag.Int("restricted-every", 0,
		"every Nth case uses the restricted dialect (0 = kind default)")
	noShrink := flag.Bool("no-shrink", false, "report failures unshrunk")
	jsonOut := flag.Bool("json", false, "emit the report(s) as JSON on stdout")
	outDir := flag.String("out", "", "write failing cases as replayable corpus files to this directory")
	emit := flag.Uint64("emit", 0, "print the generated program for this seed and exit")
	emitKind := flag.String("emit-kind", "differential", "case kind for -emit")
	writeCorpus := flag.String("write-corpus", "", "regenerate the committed regression corpus into this directory and exit")
	noCache := flag.Bool("nodecodecache", false,
		"disable the predecoded instruction cache; campaigns must report identical bytes either way")
	noFuse := flag.Bool("nofuse", false,
		"disable superinstruction fusion; campaigns must report identical bytes either way")
	noCert := flag.Bool("nocert", false,
		"disable execute certificates (per-word fetch checks); campaigns must report identical bytes either way")
	noThread := flag.Bool("nothread", false,
		"disable threaded dispatch (switch-executor engine); campaigns must report identical bytes either way")
	noJIT := flag.Bool("nojit", false,
		"disable the superblock JIT (interpreter-only engine); campaigns must report identical bytes either way")
	noObs := flag.Bool("noobs", false,
		"disable observability (metrics and tracing); campaigns must report identical bytes either way")
	noCOW := flag.Bool("nocow", false,
		"disable copy-on-write device memory (flat-clone oracle); campaigns must report identical bytes either way")
	noPower := flag.Bool("nopower", false,
		"disable the fleet intermittent-power model; campaigns must report identical bytes either way")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr at this interval (e.g. 2s; 0 = off)")
	flag.Parse()

	cpu.SetDecodeCache(!*noCache)
	isa.SetFusion(!*noFuse)
	mem.SetExecCerts(!*noCert)
	isa.SetThreading(!*noThread)
	isa.SetJIT(!*noJIT)
	mem.SetCOW(!*noCOW)
	fleet.SetPower(!*noPower)
	if *noObs {
		obs.SetMetrics(false)
		obs.SetTracing(false)
	}

	if *metricsAddr != "" {
		bound, stopServe, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fail(err)
		}
		defer stopServe()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}
	if *progressEvery > 0 {
		stopProgress := startProgress(*progressEvery)
		defer stopProgress()
	}

	if *emit != 0 {
		c := torture.BuildCase(*emitKind, *emit, false)
		fmt.Print(c.Source)
		if c.Attack != nil {
			fmt.Printf("// attack: %s\n", c.Attack)
		}
		return
	}
	if *writeCorpus != "" {
		names, err := torture.BuildCorpus(*writeCorpus, torture.CorpusSeed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d corpus cases to %s\n", len(names), *writeCorpus)
		return
	}

	kinds := []string{*kind}
	if *kind == "all" {
		kinds = []string{torture.KindDifferential, torture.KindAdversarial, torture.KindHosted, torture.KindBrownout}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exitCode := 0
	var reports []*torture.Report
	for _, k := range kinds {
		cfg := torture.DefaultConfig(k)
		cfg.Programs = *n
		cfg.First = *first
		cfg.Seed = *seed
		cfg.Workers = *parallel
		cfg.Shrink = !*noShrink
		if *restrictedEvery > 0 {
			cfg.RestrictedEvery = *restrictedEvery
		}
		start := time.Now()
		rep, err := torture.Run(ctx, cfg)
		if err != nil {
			fail(err)
		}
		reports = append(reports, rep)
		if !*jsonOut {
			fmt.Print(rep.Summary())
			fmt.Printf("  wall: %.2fs (%.0f programs/sec)\n",
				time.Since(start).Seconds(), float64(cfg.Programs)/time.Since(start).Seconds())
		}
		if rep.Failed > 0 {
			exitCode = 1
			if *outDir != "" {
				if err := saveFailures(*outDir, k, rep); err != nil {
					fail(err)
				}
			}
		}
	}
	if !*jsonOut {
		fmt.Println(buildCounters())
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if len(reports) == 1 {
			err = enc.Encode(reports[0])
		} else {
			err = enc.Encode(reports)
		}
		if err != nil {
			fail(err)
		}
	}
	os.Exit(exitCode)
}

// saveFailures writes each failing case's shrunk reproducer as a corpus
// file, replayable with `go test ./internal/torture` once moved into
// testdata/ (or re-run via amulettorture -emit on its seed).
func saveFailures(dir, kind string, rep *torture.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range rep.Failures {
		c := &torture.Case{
			Name:       fmt.Sprintf("fail-%s-%06d", kind, f.Index),
			Kind:       f.Kind,
			Seed:       f.Seed,
			Restricted: f.Restricted,
			Source:     f.Source,
			Attack:     f.Attack,
			Note:       fmt.Sprintf("shrunk failure [%s]: %s", f.Category, f.Reason),
		}
		if err := torture.WriteCase(dir, c); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  wrote %s/%s.json\n", dir, c.Name)
	}
	return nil
}

// buildCounters renders the process-wide case and firmware-build counters —
// the same series /metrics exposes, for one-shot CLI output.
func buildCounters() string {
	c := func(name string) uint64 {
		if m := obs.Default.Lookup(name); m != nil {
			return m.Value()
		}
		return 0
	}
	return fmt.Sprintf("cases executed: %d; firmware builds: %d (%d cache hits); boot templates: %d built (%d cache hits)",
		c(obs.MetricTortureCase),
		c(obs.MetricFirmwareBuilds), c(obs.MetricBuildCacheHits),
		c(obs.MetricTemplateBuilds), c(obs.MetricTemplateHits))
}

// startProgress prints a periodic cases-executed line on stderr, reading the
// same process-global counters /metrics serves.
func startProgress(every time.Duration) (stop func()) {
	cases := func() uint64 { return 0 }
	if m := obs.Default.Lookup(obs.MetricTortureCase); m != nil {
		cases = m.Value
	}
	lastCases := cases()
	return obs.StartProgress(os.Stderr, every, func() string {
		now := cases()
		delta := now - lastCases
		lastCases = now
		return fmt.Sprintf("progress: %d cases executed (%s)", now, obs.Rate(delta, every))
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amulettorture:", err)
	os.Exit(1)
}
