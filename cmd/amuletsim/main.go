// Command amuletsim runs firmware on the simulated MCU.
//
// Two forms:
//
//	amuletsim -main prog.c        compile a standalone program (int main())
//	                              and run it to halt, printing the exit
//	                              code, console output and cycle count;
//	amuletsim -app NAME [-ms N]   boot the kernel with a bundled app and
//	                              run N ms of virtual wear, printing app
//	                              state, log records and fault reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"amuletiso"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/isa"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
	"amuletiso/internal/power"
)

func main() {
	mainFile := flag.String("main", "", "standalone AmuletC program with main()")
	appName := flag.String("app", "", "bundled application to run under the kernel")
	modeName := flag.String("mode", "MPU", "isolation mode")
	ms := flag.Uint64("ms", 10_000, "virtual milliseconds to run (kernel form)")
	budget := flag.Uint64("budget", 100_000_000, "cycle budget (standalone form)")
	noCache := flag.Bool("nodecodecache", false, "disable the predecoded instruction cache (slow, for differential checks)")
	noFuse := flag.Bool("nofuse", false, "disable superinstruction fusion (for differential checks)")
	noCert := flag.Bool("nocert", false, "disable execute certificates (for differential checks)")
	noThread := flag.Bool("nothread", false, "disable threaded dispatch (switch-executor engine, for differential checks)")
	noJIT := flag.Bool("nojit", false, "disable the superblock JIT (interpreter-only engine, for differential checks)")
	noObs := flag.Bool("noobs", false, "disable observability (metrics and tracing)")
	noCOW := flag.Bool("nocow", false, "disable copy-on-write device memory (flat-clone oracle, for differential checks)")
	noPower := flag.Bool("nopower", false, "disable the intermittent-power model (ignore -power-trace; output must match a run without it)")
	powerTrace := flag.String("power-trace", "", "run the device on harvested power: solar, kinetic or recorded, optionally :mW peak (kernel form)")
	tracePath := flag.String("trace", "", "export the run as Chrome trace-event JSON to this file (kernel form)")
	flag.Parse()

	cpu.SetDecodeCache(!*noCache)
	isa.SetFusion(!*noFuse)
	mem.SetExecCerts(!*noCert)
	isa.SetThreading(!*noThread)
	isa.SetJIT(!*noJIT)
	mem.SetCOW(!*noCOW)
	if *noObs {
		obs.SetMetrics(false)
		obs.SetTracing(false)
	}

	var mode cc.Mode
	found := false
	for _, m := range cc.Modes {
		if strings.EqualFold(m.String(), *modeName) {
			mode, found = m, true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown mode %q", *modeName))
	}

	if *noPower {
		*powerTrace = ""
	}
	switch {
	case *mainFile != "":
		runStandalone(*mainFile, mode, *budget)
	case *appName != "" && *powerTrace != "":
		runAppPowered(*appName, mode, *ms, *powerTrace)
	case *appName != "":
		runApp(*appName, mode, *ms, *tracePath)
	default:
		fmt.Fprintln(os.Stderr, "amuletsim: pass -main prog.c or -app name")
		flag.Usage()
		os.Exit(2)
	}
}

func runStandalone(path string, mode cc.Mode, budget uint64) {
	src, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	prog, err := cc.CompileProgram("prog", string(src), cc.ProgramOptions{
		Mode: mode, EnableMPU: mode == cc.ModeMPU,
	})
	if err != nil {
		fail(err)
	}
	m := prog.Load()
	reason, fault := m.Run(budget)
	if len(m.CPU.Console) > 0 {
		fmt.Printf("console: %s\n", m.CPU.Console)
	}
	fmt.Printf("stop=%v cycles=%d insns=%d\n", reason, m.CPU.Cycles, m.CPU.Insns)
	switch reason {
	case cpu.StopHalt:
		if m.CPU.ExitCode == cc.FaultExitCode {
			fmt.Println("exit: ISOLATION FAULT (check stub)")
			os.Exit(3)
		}
		fmt.Printf("exit: %d\n", int16(m.CPU.ExitCode))
	case cpu.StopFault:
		fmt.Printf("hardware fault: %v\n", fault)
		os.Exit(3)
	}
}

func runApp(name string, mode cc.Mode, ms uint64, tracePath string) {
	app, ok := amuletiso.AppByName(name)
	if !ok {
		fail(fmt.Errorf("no bundled app %q", name))
	}
	sys, err := amuletiso.NewSystem([]amuletiso.App{app}, mode)
	if err != nil {
		fail(err)
	}
	if tracePath != "" {
		// Full-run export wants every event, not a post-mortem window: an
		// unbounded recorder replaces whatever the boot hatch attached.
		sys.Kernel.AttachRecorder(obs.NewRecorder(0))
	}
	n := sys.RunFor(ms)
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		if err := obs.WriteChromeTrace(f, sys.Kernel.Recorder().Events()); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d events exported to %s (load in chrome://tracing)\n",
			sys.Kernel.Recorder().Len(), tracePath)
	}
	st := sys.App(0)
	fmt.Printf("%s under %v: %d events in %d ms of wear\n", app.Title, mode, n, ms)
	fmt.Printf("  dispatches=%d syscalls=%d active-cycles=%d alive=%v\n",
		st.Dispatches, st.Syscalls, st.Cycles, st.Alive)
	for _, v := range st.LogValues {
		fmt.Printf("  log tag=%d value=%d at %dms\n", v.Tag, v.Value, v.AtMS)
	}
	if len(st.Log) > 0 {
		fmt.Printf("  raw log: % X\n", st.Log)
	}
	for row, text := range sys.Kernel.Display.Rows {
		fmt.Printf("  display[%d] = %q\n", row, text)
	}
	for _, f := range sys.Kernel.Faults {
		fmt.Printf("  FAULT app=%d at=%dms: %s\n", f.App, f.AtMS, f.Reason)
	}
	fmt.Println(" ", buildCounters())
}

// runAppPowered runs the kernel form on harvested power: charge integrates at
// fixed 50 ms boundaries against the same supercapacitor model amuletfleet
// devices use, brownouts take a FRAM persistent cut and reboot through the
// boot template once the supply recovers.
func runAppPowered(name string, mode cc.Mode, ms uint64, spec string) {
	app, ok := amuletiso.AppByName(name)
	if !ok {
		fail(fmt.Errorf("no bundled app %q", name))
	}
	profile, err := power.Parse(spec)
	if err != nil {
		fail(err)
	}
	sys, err := amuletiso.NewSystem([]amuletiso.App{app}, mode)
	if err != nil {
		fail(err)
	}
	tmpl := kernel.NewBootTemplate(sys.Firmware)
	k := tmpl.NewKernel(0)

	const stepMS = 50
	trace := profile.Trace(0)
	cap := power.DefaultSupercap()
	charge := cap.CapacityPJ
	var (
		events, brownouts, reboots int
		lastCycles                 uint64
		cut                        *kernel.Checkpoint
	)
	for t := uint64(stepMS); t <= ms; t += stepMS {
		harvest := trace.HarvestRangePJ(t-stepMS, t)
		if k == nil { // dark: harvest-only until the restart threshold
			charge = min(charge+harvest, cap.CapacityPJ)
			if charge >= cap.RestartPJ {
				k, err = tmpl.RebootFromCut(cut, t, nil)
				if err != nil {
					fail(err)
				}
				cut = nil
				lastCycles = k.CPU.Cycles
				reboots++
				fmt.Printf("  reboot at %dms (charge %.1fmJ)\n", t, float64(charge)/1e9)
			}
			continue
		}
		events += k.RunUntil(t)
		drain := (k.CPU.Cycles-lastCycles)*power.EnergyPerCyclePJ + stepMS*power.IdleDrainPJPerMS
		lastCycles = k.CPU.Cycles
		charge = min(charge+harvest, cap.CapacityPJ)
		if charge > drain {
			charge -= drain
		} else {
			charge = 0
		}
		if charge <= cap.BrownoutPJ {
			cut = tmpl.PersistentCut(tmpl.Checkpoint(k), t)
			k.Bus.ReleasePages()
			k = nil
			brownouts++
			fmt.Printf("  brownout at %dms\n", t)
		}
	}

	fmt.Printf("%s under %v on %s power: %d events in %d ms of wear\n",
		app.Title, mode, profile.Kind, events, ms)
	fmt.Printf("  brownouts=%d reboots=%d final-charge=%.1fmJ\n",
		brownouts, reboots, float64(charge)/1e9)
	var st kernel.AppCheckpoint
	if k != nil {
		live := tmpl.Checkpoint(k)
		st = live.Apps[0]
	} else {
		st = cut.Apps[0]
	}
	fmt.Printf("  dispatches=%d syscalls=%d active-cycles=%d alive=%v\n",
		st.Dispatches, st.Syscalls, st.Cycles, st.Alive)
	for _, v := range st.LogValues {
		fmt.Printf("  log tag=%d value=%d at %dms\n", v.Tag, v.Value, v.AtMS)
	}
	var faults []kernel.FaultRecord
	if k != nil {
		faults = k.Faults
	} else {
		faults = cut.Faults
	}
	for _, f := range faults {
		fmt.Printf("  FAULT app=%d at=%dms [%v]: %s\n", f.App, f.AtMS, f.Class, f.Reason)
	}
	fmt.Println(" ", buildCounters())
}

// buildCounters renders the process-wide firmware-build and cache counters —
// the same series /metrics exposes, for one-shot CLI output.
func buildCounters() string {
	c := func(name string) uint64 {
		if m := obs.Default.Lookup(name); m != nil {
			return m.Value()
		}
		return 0
	}
	return fmt.Sprintf("firmware builds: %d (%d cache hits); boot templates: %d built (%d cache hits)",
		c(obs.MetricFirmwareBuilds), c(obs.MetricBuildCacheHits),
		c(obs.MetricTemplateBuilds), c(obs.MetricTemplateHits))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amuletsim:", err)
	os.Exit(1)
}
