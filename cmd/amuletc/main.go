// Command amuletc compiles AmuletC source with the AFT pipeline and reports
// what the toolchain produced: the memory map, per-app analysis (stack
// bounds, check sites, API calls), symbols and optionally a disassembly.
//
// Usage:
//
//	amuletc [-mode MPU|SoftwareOnly|FeatureLimited|NoIsolation] [-S] [-map] file.c...
//	amuletc -app pedometer -app clock ...     (bundled suite apps)
//
// Each input file becomes one application named after its basename; every
// app must export `void handle_event(int ev, int arg)`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"amuletiso"
	"amuletiso/internal/aft"
	"amuletiso/internal/asm"
	"amuletiso/internal/cc"
)

type appList []string

func (a *appList) String() string     { return strings.Join(*a, ",") }
func (a *appList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	modeName := flag.String("mode", "MPU", "isolation mode: NoIsolation, FeatureLimited, SoftwareOnly, MPU")
	dumpAsm := flag.Bool("S", false, "disassemble each app's code segment")
	showMap := flag.Bool("map", true, "print the firmware memory map")
	var bundled appList
	flag.Var(&bundled, "app", "add a bundled app by name (repeatable)")
	flag.Parse()

	mode, ok := parseMode(*modeName)
	if !ok {
		fail(fmt.Errorf("unknown mode %q", *modeName))
	}

	var sources []aft.AppSource
	for _, name := range bundled {
		app, ok := amuletiso.AppByName(name)
		if !ok {
			fail(fmt.Errorf("no bundled app %q", name))
		}
		sources = append(sources, app.AFT())
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sources = append(sources, aft.AppSource{Name: name, Source: string(src)})
	}
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "amuletc: no inputs; pass .c files or -app names")
		flag.Usage()
		os.Exit(2)
	}

	fw, err := aft.Build(sources, mode)
	if err != nil {
		fail(err)
	}

	fmt.Printf("firmware: mode=%v, %d app(s), %d bytes\n", fw.Mode, len(fw.Apps), fw.Image.Size())
	if *showMap {
		fmt.Printf("\nmemory map (Figure 1 layout):\n")
		fmt.Printf("  %-22s 0x4400-0x%04X  (execute-only under every plan)\n", "OS code", fw.OSPlanB1-1)
		fmt.Printf("  %-22s 0x%04X-0x%04X  (OS plan: read-write)\n", "OS data", fw.OSPlanB1, fw.OSPlanB2-1)
		for _, a := range fw.Apps {
			fmt.Printf("  %-22s 0x%04X-0x%04X code | 0x%04X-0x%04X data/stack (SP0=0x%04X)\n",
				a.Name, a.CodeLo, a.CodeHi-1, a.DataLo, a.DataHi-1, a.StackTop)
		}
		fmt.Println("\nper-app analysis (AFT phase 1):")
		for _, a := range fw.Apps {
			chk := a.Checked
			stack := "unbounded (recursion); default stack + MPU policing"
			if chk.MaxStack >= 0 {
				stack = fmt.Sprintf("%d bytes", chk.MaxStack)
			}
			sites := 0
			apiCalls := 0
			for _, fi := range chk.Funcs {
				sites += fi.CheckSites
				apiCalls += len(fi.APICalls)
			}
			fmt.Printf("  %-14s funcs=%d  check-sites=%d  api-call-sites=%d  est. stack=%s\n",
				a.Name, len(chk.Funcs), sites, apiCalls, stack)
		}
	}
	if *dumpAsm {
		for _, a := range fw.Apps {
			fmt.Printf("\n;; ---- %s code segment ----\n", a.Name)
			seg := asm.Segment{Addr: a.CodeLo, Data: extract(fw, a.CodeLo, a.CodeHi)}
			fmt.Print(asm.DumpSegment(seg))
		}
	}
}

func extract(fw *aft.Firmware, lo, hi uint16) []byte {
	out := make([]byte, hi-lo)
	for _, s := range fw.Image.Segments {
		for i, b := range s.Data {
			addr := s.Addr + uint16(i)
			if addr >= lo && addr < hi {
				out[addr-lo] = b
			}
		}
	}
	return out
}

func parseMode(s string) (cc.Mode, bool) {
	for _, m := range cc.Modes {
		if strings.EqualFold(m.String(), s) {
			return m, true
		}
	}
	return 0, false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amuletc:", err)
	os.Exit(1)
}
