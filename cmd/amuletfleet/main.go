// Command amuletfleet simulates a fleet of independent Amulet devices in
// parallel and reports aggregate isolation-workload statistics.
//
//	amuletfleet -devices 1000 -mode mpu -seed 42
//	amuletfleet -devices 200 -mode all -apps pedometer,hr -ms 120000 -json
//
// Each device runs the same application set under the same isolation mode
// for the same virtual wear window, but with its own deterministically
// derived noise seed, so the fleet sees decorrelated workloads while the
// whole run stays reproducible: the same fleet seed produces an identical
// report at any -parallel setting. Firmware for each (app set, mode) pair is
// compiled exactly once and shared by every device.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"time"

	"amuletiso"
	"amuletiso/internal/apps"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/fleet"
	"amuletiso/internal/isa"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mem"
	"amuletiso/internal/obs"
)

func main() {
	devices := flag.Int("devices", 100, "number of simulated devices")
	firstDevice := flag.Int("first-device", 0, "first device index (for sharding a fleet across machines)")
	modeName := flag.String("mode", "mpu", "isolation mode (or 'all')")
	appList := flag.String("apps", "", "comma-separated app names (default: the nine-app suite)")
	ms := flag.Uint64("ms", 60_000, "virtual milliseconds of wear per device")
	seed := flag.Uint64("seed", 1, "fleet seed (per-device seeds derive from it)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	buttonEvery := flag.Uint64("button-every", 0, "inject a button press every N ms (0 = off)")
	faultEvery := flag.Uint64("fault-every", 0, "inject a fault into -fault-app every N ms (0 = off)")
	faultApp := flag.Int("fault-app", 0, "app index targeted by -fault-every")
	maxFaults := flag.Int("max-faults", 3, "restart policy: faults before an app stays dead")
	backoff := flag.Uint64("backoff", 1000, "restart policy: backoff before restart, ms")
	powerTrace := flag.String("power-trace", "", "run devices on harvested power: solar, kinetic or recorded, optionally :mW peak (e.g. solar:4)")
	brownoutEvery := flag.Uint64("brownout-every", 0, "force a brownout every N ms on every device (0 = off; excludes -power-trace)")
	brownoutOff := flag.Uint64("brownout-off", 0, "forced-brownout dark time before reboot, ms (0 = 500)")
	repeat := flag.Int("repeat", 1, "run each scenario this many times, must be >= 1 (soak mode: every run is a byte-identical re-run from the warm build cache and only the last report is kept — useful for live-metrics scrapes and leak hunts)")
	jsonOut := flag.Bool("json", false, "emit the report(s) as JSON on stdout")
	name := flag.String("name", "fleet", "scenario name recorded in the report")
	noCache := flag.Bool("nodecodecache", false, "disable the predecoded instruction cache (slow, for differential checks)")
	noFuse := flag.Bool("nofuse", false, "disable superinstruction fusion (for differential checks)")
	noCert := flag.Bool("nocert", false, "disable execute certificates (for differential checks)")
	noThread := flag.Bool("nothread", false, "disable threaded dispatch (switch-executor engine, for differential checks)")
	noJIT := flag.Bool("nojit", false, "disable the superblock JIT (interpreter-only engine, for differential checks)")
	noBatch := flag.Bool("nobatch", false, "disable wear-window event batching (reports must be byte-identical either way)")
	noObs := flag.Bool("noobs", false, "disable observability (metrics and tracing)")
	noCOW := flag.Bool("nocow", false, "disable copy-on-write device memory (flat 64KiB clones, the memory oracle; reports must be byte-identical either way)")
	noPower := flag.Bool("nopower", false, "disable the intermittent-power model (ignore -power-trace/-brownout-every; reports must match a run without those flags byte-for-byte)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	progressEvery := flag.Duration("progress", 0, "print a progress line to stderr at this interval (e.g. 2s; 0 = off)")
	faultTrace := flag.Bool("fault-trace", false, "attach per-device flight recorders and dump the last events of faulting devices into the report")
	flag.Parse()

	cpu.SetDecodeCache(!*noCache)
	isa.SetFusion(!*noFuse)
	mem.SetExecCerts(!*noCert)
	isa.SetThreading(!*noThread)
	isa.SetJIT(!*noJIT)
	fleet.SetBatching(!*noBatch)
	mem.SetCOW(!*noCOW)
	fleet.SetPower(!*noPower)
	if *repeat < 1 {
		// The old `i < repeat || i == 0` loop silently ran once for 0 or
		// negative repeats; that masks typos in soak scripts. Reject instead.
		fail(fmt.Errorf("-repeat must be >= 1 (got %d)", *repeat))
	}
	if *noObs {
		obs.SetMetrics(false)
		obs.SetTracing(false)
	}

	if *metricsAddr != "" {
		bound, stopServe, err := obs.Serve(*metricsAddr, obs.Default)
		if err != nil {
			fail(err)
		}
		defer stopServe()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}
	if *progressEvery > 0 {
		stopProgress := startProgress(*progressEvery)
		defer stopProgress()
	}

	modes, err := parseModes(*modeName)
	if err != nil {
		fail(err)
	}
	list, err := parseApps(*appList)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := &fleet.Runner{Workers: *parallel, Cache: fleet.NewBuildCache()}
	var reports []*fleet.Report
	for _, mode := range modes {
		sc := fleet.Scenario{
			Name:            *name,
			Apps:            list,
			Mode:            mode,
			DurationMS:      *ms,
			Devices:         *devices,
			FirstDevice:     *firstDevice,
			Seed:            *seed,
			ButtonEveryMS:   *buttonEvery,
			FaultEveryMS:    *faultEvery,
			FaultApp:        *faultApp,
			FaultTrace:      *faultTrace,
			PowerTrace:      *powerTrace,
			BrownoutEveryMS: *brownoutEvery,
			BrownoutOffMS:   *brownoutOff,
			Policy:          &kernel.RestartPolicy{MaxFaults: *maxFaults, BackoffMS: *backoff},
		}
		start := time.Now()
		var rep *fleet.Report
		// Repeats are byte-identical re-runs (same seed, warm build cache);
		// only the last report is kept.
		for i := 0; i < *repeat; i++ {
			var err error
			rep, err = runner.Run(ctx, sc)
			if err != nil {
				fail(err)
			}
		}
		reports = append(reports, rep)
		if !*jsonOut {
			printHuman(rep, time.Since(start))
		}
	}
	builds, hits := runner.Cache.Stats()
	tmplBuilds, tmplHits := runner.Cache.TemplateStats()
	pageGets, pagePuts := runner.ArenaStats()
	cacheLine := fmt.Sprintf("firmware builds: %d (%d cache hits); boot templates: %d built (%d cache hits); cow pages: %d reused, %d recycled",
		builds, hits, tmplBuilds, tmplHits, pageGets, pagePuts)
	cacheLine += "\n" + jitLine()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// A single mode emits one object (the stable scripting interface);
		// -mode all emits an array.
		if len(reports) == 1 {
			err = enc.Encode(reports[0])
		} else {
			err = enc.Encode(reports)
		}
		if err != nil {
			fail(err)
		}
		// Keep stdout pure JSON; the cache counters go to stderr.
		fmt.Fprintln(os.Stderr, cacheLine)
	} else {
		fmt.Println(cacheLine)
	}
}

// parseModes resolves a mode flag: one name, or "all" for every model.
func parseModes(name string) ([]cc.Mode, error) {
	if strings.EqualFold(name, "all") {
		return cc.Modes, nil
	}
	for _, m := range cc.Modes {
		if strings.EqualFold(m.String(), name) {
			return []cc.Mode{m}, nil
		}
	}
	return nil, fmt.Errorf("unknown mode %q (try NoIsolation, FeatureLimited, SoftwareOnly, MPU or all)", name)
}

// parseApps resolves the app-set flag against the bundled registry; empty
// selects the full nine-app suite.
func parseApps(list string) ([]apps.App, error) {
	if list == "" {
		return amuletiso.Suite(), nil
	}
	var out []apps.App
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		app, ok := amuletiso.AppByName(name)
		if !ok {
			return nil, fmt.Errorf("no bundled app %q", name)
		}
		out = append(out, app)
	}
	return out, nil
}

func printHuman(r *fleet.Report, elapsed time.Duration) {
	fmt.Printf("%s: %d devices × %d ms under %s (seed %d)\n",
		r.Scenario, r.Devices, r.DurationMS, r.Mode, r.Seed)
	fmt.Printf("  events=%d dispatches=%d syscalls=%d cycles=%d\n",
		r.TotalEvents, r.TotalDispatches, r.TotalSyscalls, r.TotalCycles)
	fmt.Printf("  device cycles: min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		r.CycleSummary.Min, r.CycleSummary.P50, r.CycleSummary.P90,
		r.CycleSummary.P99, r.CycleSummary.Max)
	fmt.Printf("  weekly battery impact %%: p50=%.3f p99=%.3f max=%.3f\n",
		r.BatterySummary.P50, r.BatterySummary.P99, r.BatterySummary.Max)
	fmt.Printf("  projected battery lifetime (h): min=%.1f p50=%.1f p99=%.1f\n",
		r.LifetimeSummary.Min, r.LifetimeSummary.P50, r.LifetimeSummary.P99)
	if r.TotalBrownouts > 0 {
		fmt.Printf("  brownouts=%d across %d devices\n", r.TotalBrownouts, r.DevicesBrownedOut)
	}
	if ls := r.LatencySummary; ls.Count > 0 {
		fmt.Printf("  event latency (cycles): p50=%d p90=%d p99=%d max=%d over %d events\n",
			ls.P50, ls.P90, ls.P99, ls.Max, ls.Count)
	}
	if r.TotalFaults > 0 {
		fmt.Printf("  faults=%d across %d devices\n", r.TotalFaults, r.DevicesFaulted)
		classes := make([]string, 0, len(r.FaultClasses))
		for class := range r.FaultClasses {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Printf("    layer %-9s %4d×\n", class, r.FaultClasses[class])
		}
		reasons := make([]string, 0, len(r.FaultReasons))
		for reason := range r.FaultReasons {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			fmt.Printf("    %4d× %s\n", r.FaultReasons[reason], reason)
		}
	}
	rate := float64(r.Devices) / elapsed.Seconds()
	fmt.Printf("  wall: %.2fs on %d CPUs (%.0f devices/sec)\n",
		elapsed.Seconds(), runtime.GOMAXPROCS(0), rate)
}

// jitLine renders the process-wide superblock-JIT counters — the same series
// /metrics exposes — for one-shot CLI output: what got compiled, what the
// passes saved, and why compiled blocks fell back to the interpreter.
func jitLine() string {
	c := func(name string) uint64 {
		if m := obs.Default.Lookup(name); m != nil {
			return m.Value()
		}
		return 0
	}
	var deopts uint64
	if v := obs.Default.LookupVec(obs.MetricJITDeopts); v != nil {
		deopts = v.Total()
	}
	return fmt.Sprintf("jit: %d blocks (%d steps) compiled in %s; %d flag stores elided, %d ext words baked, %d addrs folded; %d deopts",
		c(obs.MetricJITBlocksCompiled), c(obs.MetricJITStepsCompiled),
		time.Duration(c(obs.MetricJITCompileNS)),
		c(obs.MetricJITFlagsElided), c(obs.MetricJITExtElided),
		c(obs.MetricJITAddrsFolded), deopts)
}

// startProgress prints a periodic devices-done / instr-per-second line on
// stderr, reading the same process-global counters /metrics serves.
func startProgress(every time.Duration) (stop func()) {
	counter := func(name string) func() uint64 {
		if m := obs.Default.Lookup(name); m != nil {
			return m.Value
		}
		return func() uint64 { return 0 }
	}
	done := counter(obs.MetricDevicesCompleted)
	instr := counter(obs.MetricInstrSimulated)
	lastInstr := instr()
	return obs.StartProgress(os.Stderr, every, func() string {
		now := instr()
		delta := now - lastInstr
		lastInstr = now
		return fmt.Sprintf("progress: %d devices done, %s instructions (%s)",
			done(), obs.Rate(delta, every), time.Now().Format("15:04:05"))
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amuletfleet:", err)
	os.Exit(1)
}
