package amuletiso

import (
	"testing"

	"amuletiso/internal/arp"
	"amuletiso/internal/kernel"
)

// TestWholePlatform is the flagship integration test: all nine Amulet
// applications installed in one firmware image — the multi-app wearable the
// paper's platform exists to support — running together under each memory
// model for two virtual minutes, sharing sensors, display, timers and the
// OS, with zero faults and every app making progress.
func TestWholePlatform(t *testing.T) {
	for _, mode := range Modes {
		sys, err := NewSystem(Suite(), mode)
		if err != nil {
			t.Fatalf("[%v] build: %v", mode, err)
		}
		if n := len(sys.Firmware.Apps); n != 9 {
			t.Fatalf("[%v] %d apps", mode, n)
		}
		sys.RunFor(2 * 60 * 1000)

		for i, st := range sys.Kernel.Apps {
			if !st.Alive {
				t.Errorf("[%v] app %d (%s) died: %v", mode, i, st.Info.Name, sys.Kernel.Faults)
			}
			if st.Dispatches == 0 {
				t.Errorf("[%v] app %d (%s) never ran", mode, i, st.Info.Name)
			}
		}
		if len(sys.Kernel.Faults) != 0 {
			t.Errorf("[%v] faults: %v", mode, sys.Kernel.Faults)
		}
		if sys.Kernel.GateCount() == 0 {
			t.Errorf("[%v] no context switches recorded", mode)
		}
		// The clock app must have drawn at least one face refresh and the
		// high-rate apps must dominate dispatch counts.
		fall := sys.Kernel.Apps[2] // falldetection, 20 Hz
		clk := sys.Kernel.Apps[1]  // clock, 1 Hz
		if fall.Dispatches <= clk.Dispatches {
			t.Errorf("[%v] dispatch rates wrong: fall=%d clock=%d", mode, fall.Dispatches, clk.Dispatches)
		}
	}
}

// TestWholePlatformIsolationUnderAttack installs the nine real apps plus a
// malicious tenth app that tries to corrupt each neighbor in turn; under
// the MPU hybrid every attempt must fault without collateral damage, and
// the other nine must keep running.
func TestWholePlatformIsolationUnderAttack(t *testing.T) {
	evil := App{Name: "evil", Source: `
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int *p = 0;
        uint a = arg;
        p = p + (a >> 1);
        *p = 0x0BAD;
    }
}
`}
	list := append([]App{evil}, Suite()...)
	sys, err := NewSystem(list, MPU)
	if err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Policy = kernel.RestartPolicy{MaxFaults: 100, BackoffMS: 10}

	// Attack every other app's data segment base.
	for _, victim := range sys.Firmware.Apps[1:] {
		sys.Kernel.Post(0, 3, victim.DataLo+64, 1)
		sys.RunFor(50)
	}
	sys.RunFor(5_000)

	if got := sys.App(0).Faults; got != 9 {
		t.Errorf("evil app faulted %d times, want 9", got)
	}
	for i, st := range sys.Kernel.Apps[1:] {
		if !st.Alive || st.Faults > 0 {
			t.Errorf("victim %d (%s) harmed: alive=%v faults=%d", i+1, st.Info.Name, st.Alive, st.Faults)
		}
	}
}

// TestFigure2WorkloadsMatchAcrossModes guards the ARP methodology: the
// deterministic workload must deliver the identical number of events under
// every mode, or overhead subtraction would be meaningless.
func TestFigure2WorkloadsMatchAcrossModes(t *testing.T) {
	for _, app := range Suite()[:3] {
		var dispatches []uint64
		for _, mode := range Modes {
			s, err := arp.Profile(app, mode, 20_000)
			if err != nil {
				t.Fatalf("%s/%v: %v", app.Name, mode, err)
			}
			dispatches = append(dispatches, s.Dispatches)
		}
		for _, d := range dispatches[1:] {
			if d != dispatches[0] {
				t.Errorf("%s: dispatch counts diverge across modes: %v", app.Name, dispatches)
				break
			}
		}
	}
}
