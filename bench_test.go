package amuletiso

// Benchmark harness: one benchmark family per table/figure in the paper's
// evaluation. Each benchmark drives the full simulated pipeline and reports
// the paper's quantity as a custom metric:
//
//	BenchmarkTable1MemoryAccess/<mode>   -> sim-cycles/op   (Table 1 row 1)
//	BenchmarkTable1ContextSwitch/<mode>  -> sim-cycles/op   (Table 1 row 2)
//	BenchmarkFigure2/<app>/<mode>        -> Gcyc/week, battery%
//	BenchmarkFigure3/<bench>/<mode>      -> slowdown%
//
// Go's ns/op numbers measure the simulator itself; the sim-* metrics are
// the reproduced results. Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"amuletiso/internal/abi"
	"amuletiso/internal/aft"
	"amuletiso/internal/apps"
	"amuletiso/internal/arp"
	"amuletiso/internal/cc"
	"amuletiso/internal/cpu"
	"amuletiso/internal/fleet"
	"amuletiso/internal/kernel"
	"amuletiso/internal/mpu"
)

// benchSystem builds a single-app kernel and consumes EvInit.
func benchSystem(b *testing.B, app apps.App, mode cc.Mode) *kernel.Kernel {
	b.Helper()
	fw, err := aft.Build([]aft.AppSource{app.AFT()}, mode)
	if err != nil {
		b.Fatal(err)
	}
	k := kernel.New(fw)
	k.RunUntil(1)
	return k
}

// dispatchOnce posts one event and runs it, failing the benchmark on fault.
func dispatchOnce(b *testing.B, k *kernel.Kernel, ev, arg uint16) uint64 {
	b.Helper()
	k.Post(0, ev, arg, 0)
	before := k.CPU.Cycles
	if !k.Step() {
		b.Fatal("event not delivered")
	}
	if len(k.Faults) > 0 {
		b.Fatalf("fault: %v", k.Faults)
	}
	return k.CPU.Cycles - before
}

// perOpCycles measures a per-operation cost with the two-batch difference.
func perOpCycles(b *testing.B, k *kernel.Kernel, ev uint16, n uint16) float64 {
	c1 := dispatchOnce(b, k, ev, n)
	c2 := dispatchOnce(b, k, ev, 2*n)
	return float64(c2-c1) / float64(n)
}

// BenchmarkTable1MemoryAccess regenerates Table 1's "Memory Access" row.
func BenchmarkTable1MemoryAccess(b *testing.B) {
	for _, mode := range Modes {
		b.Run(mode.String(), func(b *testing.B) {
			k := benchSystem(b, apps.Synthetic(), mode)
			var per float64
			for i := 0; i < b.N; i++ {
				per = perOpCycles(b, k, apps.EvMemOps, 200) / 2 // read+write per iter
			}
			b.ReportMetric(per, "sim-cycles/op")
		})
	}
}

// BenchmarkTable1ContextSwitch regenerates Table 1's "Context Switch" row
// (one API round trip through a pointer-carrying gate).
func BenchmarkTable1ContextSwitch(b *testing.B) {
	for _, mode := range Modes {
		b.Run(mode.String(), func(b *testing.B) {
			k := benchSystem(b, apps.Synthetic(), mode)
			var per float64
			for i := 0; i < b.N; i++ {
				per = perOpCycles(b, k, apps.EvGateOps, 200)
			}
			b.ReportMetric(per, "sim-cycles/op")
		})
	}
}

// BenchmarkTable1YieldSwitch is the ablation row: the cheapest gate (no
// pointer validation), isolating the MPU-reconfiguration share.
func BenchmarkTable1YieldSwitch(b *testing.B) {
	for _, mode := range Modes {
		b.Run(mode.String(), func(b *testing.B) {
			k := benchSystem(b, apps.Synthetic(), mode)
			var per float64
			for i := 0; i < b.N; i++ {
				per = perOpCycles(b, k, apps.EvYieldOps, 200)
			}
			b.ReportMetric(per, "sim-cycles/op")
		})
	}
}

// benchFig2Window keeps Figure 2 benchmarks affordable; cmd/paper runs the
// full 20-minute window.
const benchFig2Window = 2 * 60 * 1000

// BenchmarkFigure2 regenerates Figure 2: per app and isolation method, the
// weekly overhead in billions of cycles and the battery-lifetime impact.
func BenchmarkFigure2(b *testing.B) {
	for _, app := range Suite() {
		for _, mode := range arp.Figure2Modes {
			b.Run(fmt.Sprintf("%s/%s", app.Name, mode), func(b *testing.B) {
				var o *arp.Overhead
				var err error
				for i := 0; i < b.N; i++ {
					o, err = arp.Measure(app, mode, benchFig2Window)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(o.BillionsPerWeek, "sim-Gcyc/week")
				b.ReportMetric(o.BatteryImpactPct, "sim-battery%")
			})
		}
	}
}

// fig3Iters trades precision for benchmark runtime (the paper used 200).
const fig3Iters = 50

// BenchmarkFigure3 regenerates Figure 3: percentage slowdown per benchmark
// application and isolation method, hardware-timer measured.
func BenchmarkFigure3(b *testing.B) {
	type spec struct {
		name string
		app  apps.App
		ev   uint16
	}
	specs := []spec{
		{"ActivityCase1", apps.Activity(), apps.EvCase1},
		{"ActivityCase2", apps.Activity(), apps.EvCase2},
		{"Quicksort", apps.Quicksort(), apps.EvSort},
	}
	for _, sp := range specs {
		// Baseline per benchmark.
		base := map[int]uint64{}
		for _, mode := range Modes {
			mode := mode
			b.Run(fmt.Sprintf("%s/%s", sp.name, mode), func(b *testing.B) {
				var total uint64
				for i := 0; i < b.N; i++ {
					k := benchSystem(b, sp.app, mode)
					total = 0
					for it := 0; it < fig3Iters; it++ {
						k.Bus.Poke16(cpu.TimerTAR, 0)
						dispatchOnce(b, k, sp.ev, uint16(it))
						total += uint64(k.Bus.Peek16(cpu.TimerTAR)) * cpu.TimerPrescale
					}
				}
				if mode == NoIsolation {
					base[0] = total
					b.ReportMetric(0, "sim-slowdown%")
				} else if base[0] != 0 {
					slow := 100 * (float64(total) - float64(base[0])) / float64(base[0])
					b.ReportMetric(slow, "sim-slowdown%")
				}
			})
		}
	}
}

// BenchmarkAblationAdvancedMPU quantifies the paper's §5 claim that an MPU
// covering all of memory would make the compiler's lower-bound checks
// unnecessary: the same workload runs (a) unprotected, (b) uninstrumented
// under the hypothetical 4-region MPU, and (c) instrumented under the real
// MPU hybrid. The sim-cycles metric shows (b) == (a) < (c).
func BenchmarkAblationAdvancedMPU(b *testing.B) {
	const prog = `
int buf[64];
int main() {
    int i;
    int j = 0;
    for (i = 0; i < 2000; i++) {
        buf[j] = buf[j] + 1;
        j++;
        if (j >= 64) { j = 0; }
    }
    return buf[0];
}
`
	run := func(b *testing.B, mode cc.Mode, advanced bool) {
		p, err := cc.CompileProgram("abl", prog, cc.ProgramOptions{
			Mode: mode, EnableMPU: mode == cc.ModeMPU,
		})
		if err != nil {
			b.Fatal(err)
		}
		var cycles uint64
		for i := 0; i < b.N; i++ {
			m := p.Load()
			if advanced {
				m.MPU.Cap = mpu.CapabilityAdvanced
				m.MPU.Configure(m.Sym(abi.SymDataLo("abl")), m.Sym(abi.SymDataHi("abl")),
					mpu.RWX(1, false, false, true)|mpu.RWX(2, true, true, false), true)
			}
			reason, f := m.Run(50_000_000)
			if f != nil || reason != cpu.StopHalt {
				b.Fatalf("%v %v", reason, f)
			}
			cycles = m.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "sim-cycles")
	}
	b.Run("Unprotected", func(b *testing.B) { run(b, cc.ModeNoIsolation, false) })
	b.Run("AdvancedMPU-NoChecks", func(b *testing.B) { run(b, cc.ModeNoIsolation, true) })
	b.Run("RealMPU-Hybrid", func(b *testing.B) { run(b, cc.ModeMPU, false) })
}

// BenchmarkAblationShadowStack prices the §5 shadow return-address stack:
// recursion-heavy code with and without the InfoMem shadow maintenance.
func BenchmarkAblationShadowStack(b *testing.B) {
	const prog = `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
`
	for _, shadow := range []bool{false, true} {
		name := "Plain"
		if shadow {
			name = "ShadowStack"
		}
		b.Run(name, func(b *testing.B) {
			p, err := cc.CompileProgram("abl", prog, cc.ProgramOptions{
				Mode: cc.ModeMPU, EnableMPU: true, ShadowReturnStack: shadow,
				StackBytes: 1024,
			})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m := p.Load()
				reason, f := m.Run(50_000_000)
				if f != nil || reason != cpu.StopHalt {
					b.Fatalf("%v %v", reason, f)
				}
				cycles = m.CPU.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkSimulator measures raw simulator speed (host ns per simulated
// event) — not a paper figure, but useful for sizing experiment windows.
func BenchmarkSimulator(b *testing.B) {
	k := benchSystem(b, apps.Synthetic(), MPU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dispatchOnce(b, k, apps.EvMemOps, 100)
	}
}

// BenchmarkFleetThroughput measures fleet-simulation scaling: devices per
// second at 1, 4 and GOMAXPROCS workers, so future sharding/batching PRs can
// track whether the worker pool keeps up with the hardware.
func BenchmarkFleetThroughput(b *testing.B) {
	pedometer, _ := AppByName("pedometer")
	hr, _ := AppByName("hr")
	sc := fleet.Scenario{
		Name:       "bench",
		Apps:       []App{pedometer, hr},
		Mode:       cc.ModeMPU,
		DurationMS: 2_000,
		Devices:    32,
		Seed:       1,
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := &fleet.Runner{Workers: workers, Cache: fleet.NewBuildCache()}
			// Prime the build cache so the loop measures simulation, not
			// the one-time compile.
			if _, err := runner.Run(context.Background(), sc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(context.Background(), sc); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(b.N*sc.Devices)/elapsed, "devices/sec")
		})
	}
}
