module amuletiso

go 1.24
