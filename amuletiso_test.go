package amuletiso

import (
	"testing"

	"amuletiso/internal/abi"
)

// TestSystemFacade exercises the public API end to end: build a system from
// suite apps, run virtual wear time, observe application effects.
func TestSystemFacade(t *testing.T) {
	clock, _ := AppByName("clock")
	hr, _ := AppByName("hr")
	sys, err := NewSystem([]App{clock, hr}, MPU)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunFor(5_000)
	if sys.App(0).Dispatches == 0 || sys.App(1).Dispatches == 0 {
		t.Fatal("apps did not run")
	}
	if len(sys.Kernel.Faults) != 0 {
		t.Fatalf("unexpected faults: %v", sys.Kernel.Faults)
	}
}

// TestTable1Shape verifies the paper's Table 1 orderings (the headline
// claims): the MPU hybrid has the cheapest checked memory access among the
// isolating modes but the most expensive context switch, while Feature
// Limited pays the most per access and nothing extra at switches.
func TestTable1Shape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	ma, cs := r.MemoryAccess, r.ContextSwitch
	if !(ma[NoIsolation] < ma[MPU] && ma[MPU] < ma[SoftwareOnly] && ma[SoftwareOnly] < ma[FeatureLimited]) {
		t.Errorf("memory access ordering wrong: %v", ma)
	}
	if !(cs[NoIsolation] == cs[FeatureLimited] && cs[FeatureLimited] < cs[SoftwareOnly] && cs[SoftwareOnly] < cs[MPU]) {
		t.Errorf("context switch ordering wrong: %v", cs)
	}
	// Rough factor agreement with the paper: MPU adds ~half the per-access
	// overhead of SoftwareOnly (one compare instead of two).
	mpuOver := ma[MPU] - ma[NoIsolation]
	swOver := ma[SoftwareOnly] - ma[NoIsolation]
	if !(mpuOver > 0 && swOver/mpuOver > 1.5 && swOver/mpuOver < 2.5) {
		t.Errorf("MPU/SW per-access overhead ratio off: mpu=+%.1f sw=+%.1f", mpuOver, swOver)
	}
	// Context-switch factor: paper shows ~1.6x for MPU vs base.
	f := cs[MPU] / cs[NoIsolation]
	if f < 1.25 || f > 2.0 {
		t.Errorf("MPU context-switch factor = %.2f, want ~1.5", f)
	}
}

// TestFigure3Shape verifies Figure 3's claims: every isolating mode slows
// benchmarks down, MPU least and FeatureLimited most, with quicksort (pure
// memory traffic, no context switches) showing the widest spread.
func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"Activity Case 1", "Activity Case 2", "Quicksort"} {
		s := r.Slowdown[bench]
		if !(s[MPU] > 0 && s[MPU] < s[SoftwareOnly] && s[SoftwareOnly] < s[FeatureLimited]) {
			t.Errorf("%s ordering wrong: %v", bench, s)
		}
		if s[FeatureLimited] > 60 {
			t.Errorf("%s slowdown %v%% outside the paper's 0-50%% range", bench, s[FeatureLimited])
		}
	}
	if r.Slowdown["Quicksort"][FeatureLimited] <= r.Slowdown["Activity Case 1"][FeatureLimited] {
		t.Error("quicksort should show the largest FeatureLimited slowdown")
	}
}

// TestFigure2BatteryClaim verifies the paper's headline Figure 2 claim:
// for all applications, MPU or SoftwareOnly isolation costs less than 0.5%
// of battery lifetime.
func TestFigure2BatteryClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling suite in -short mode")
	}
	r, err := Figure2(120_000) // 2-minute window keeps the test quick
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MaxBatteryImpact(); got >= 0.5 {
		t.Errorf("max battery impact %.3f%%, paper claims < 0.5%%", got)
	}
	if len(r.Overheads) != 9*3 {
		t.Errorf("expected 27 bars, got %d", len(r.Overheads))
	}
}

// TestIsolationStory runs the paper's security scenario through the facade:
// a buggy app cannot reach a neighbor's state under the hybrid model.
func TestIsolationStory(t *testing.T) {
	evil := App{Name: "evil", Source: `
void handle_event(int ev, int arg) {
    if (ev == 3) {
        int *p = 0;
        uint a = arg;
        p = p + (a >> 1);
        *p = 0x0BAD;
    }
}
`}
	victim := App{Name: "victim", Source: `
int secret = 0x5EC2;
void handle_event(int ev, int arg) {}
`}
	sys, err := NewSystem([]App{evil, victim}, MPU)
	if err != nil {
		t.Fatal(err)
	}
	secret := sys.Firmware.Image.MustSym(abi.SymGlobal("victim", "secret"))
	sys.Kernel.Post(0, 3, secret, 1)
	sys.RunFor(100)
	if sys.Kernel.Bus.Peek16(secret) != 0x5EC2 {
		t.Fatal("secret corrupted under MPU isolation")
	}
	if sys.App(0).Faults == 0 {
		t.Fatal("evil app was not faulted")
	}
}
